"""Top-level package surface: exports, version, and the README quickstart."""

from __future__ import annotations

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.apps
        import repro.fpga
        import repro.graph
        import repro.sampling
        import repro.walks

        for module in (repro.apps, repro.fpga, repro.graph, repro.sampling, repro.walks):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_readme_quickstart_snippet(self):
        """The README's quickstart code runs verbatim (small scale)."""
        from repro import LightRW, Node2VecWalk, load_dataset

        graph = load_dataset("livejournal", scale_divisor=2048)
        engine = LightRW(graph, hardware_scale=2048)
        result = engine.run(
            Node2VecWalk(p=2, q=0.5), n_steps=10, max_sampled_queries=64
        )
        assert result.paths.shape[1] == 11
        assert result.steps_per_second > 0
        assert 0 <= result.pcie_fraction < 1

    def test_readme_comparison_snippet(self):
        from repro import MetaPathWalk, compare_engines, load_dataset

        graph = load_dataset("livejournal", scale_divisor=2048)
        report = compare_engines(
            graph, MetaPathWalk([0, 1, 2, 3]), n_steps=5, hardware_scale=2048,
            max_sampled_queries=64,
        )
        assert report.speedup > 0
        assert report.power_efficiency_improvement() > 0

    def test_module_docstring_doctest(self):
        """The package docstring example is true as written."""
        from repro import LightRW, Node2VecWalk, load_dataset

        graph = load_dataset("livejournal", scale_divisor=2048)
        engine = LightRW(graph, hardware_scale=2048)
        result = engine.run(
            Node2VecWalk(p=2, q=0.5), n_steps=8, max_sampled_queries=32
        )
        # The docstring asserts paths rows == executed queries.
        assert result.paths.shape[0] == min(32, result.num_queries)
