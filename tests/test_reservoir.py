"""Sequential weighted reservoir sampling: exactness and distribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.sampling.reservoir import (
    reservoir_sample,
    reservoir_sample_many,
    reservoir_sample_stream,
)
from repro.sampling.rng import ThundeRingRNG


class TestStreamForm:
    def test_single_item_always_selected(self):
        assert reservoir_sample_stream([(5.0, 0.99)]) == 0

    def test_zero_weights_return_minus_one(self):
        assert reservoir_sample_stream([(0.0, 0.1), (0.0, 0.2)]) == -1

    def test_zero_weight_items_never_selected(self):
        # Only index 1 has weight.
        for r in (0.0, 0.3, 0.9):
            assert reservoir_sample_stream([(0.0, r), (2.0, r), (0.0, r)]) == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            reservoir_sample_stream([(-1.0, 0.5)])

    def test_acceptance_rule(self):
        # Second item has p = 2/3; accepted iff r < 2/3.
        assert reservoir_sample_stream([(1.0, 0.0), (2.0, 0.5)]) == 1
        assert reservoir_sample_stream([(1.0, 0.0), (2.0, 0.7)]) == 0


class TestVectorizedForm:
    def test_matches_stream_form(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            n = int(rng.integers(1, 30))
            weights = rng.random(n) * (rng.random(n) > 0.2)
            uniforms = rng.random(n)
            expected = reservoir_sample_stream(zip(weights, uniforms))
            assert reservoir_sample(weights, uniforms) == expected

    def test_empty(self):
        assert reservoir_sample(np.array([]), np.array([])) == -1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            reservoir_sample(np.ones(3), np.ones(4))

    def test_negative_weights(self):
        with pytest.raises(ValueError):
            reservoir_sample(np.array([-1.0]), np.array([0.5]))

    @given(
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_selected_item_has_positive_weight(self, weights, seed):
        weights = np.asarray(weights)
        uniforms = np.random.default_rng(seed).random(weights.size)
        picked = reservoir_sample(weights, uniforms)
        if weights.sum() == 0:
            assert picked == -1
        elif picked >= 0:
            assert weights[picked] > 0


class TestDistribution:
    def test_matches_weights_chi_square(self):
        """P(select i) == w_i / sum(w) — the defining WRS property."""
        weights = np.array([1.0, 2.0, 3.0, 4.0, 10.0])
        rng = ThundeRingRNG(weights.size, seed=77)

        def uniforms():
            while True:
                yield rng.next_uniform()

        draws = reservoir_sample_many(weights, uniforms(), 40_000)
        counts = np.bincount(draws, minlength=weights.size)
        expected = weights / weights.sum() * draws.size
        __, p_value = stats.chisquare(counts, expected)
        assert p_value > 1e-4

    def test_uniform_weights_uniform_selection(self):
        weights = np.ones(8)
        rng = ThundeRingRNG(8, seed=5)

        def uniforms():
            while True:
                yield rng.next_uniform()

        draws = reservoir_sample_many(weights, uniforms(), 24_000)
        counts = np.bincount(draws, minlength=8)
        __, p_value = stats.chisquare(counts)
        assert p_value > 1e-4
