"""ThundeRiNG-substitute RNG: determinism, equivalence, statistical quality."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.sampling.rng import (
    ThundeRingRNG,
    XorShift128Plus,
    derive_seed,
    splitmix64,
)


class TestSplitMix64:
    def test_scalar_matches_array(self):
        values = np.array([0, 1, 2, 12345, 2**63], dtype=np.uint64)
        array_out = splitmix64(values)
        for value, expected in zip(values.tolist(), array_out.tolist()):
            assert splitmix64(int(value)) == expected

    def test_avalanche(self):
        # Flipping one input bit flips roughly half the output bits.
        base = splitmix64(0xDEADBEEF)
        flipped = splitmix64(0xDEADBEEF ^ 1)
        assert 16 <= bin(base ^ flipped).count("1") <= 48

    def test_returns_python_int_for_scalar(self):
        assert isinstance(splitmix64(7), int)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_salt_changes_seed(self):
        seeds = {derive_seed(42, salt) for salt in range(100)}
        assert len(seeds) == 100

    def test_order_matters(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)


class TestThundeRingRNG:
    def test_block_matches_scalar_path(self):
        a = ThundeRingRNG(8, seed=99)
        b = ThundeRingRNG(8, seed=99)
        block = a.uint32_block(16)
        singles = np.stack([b.next_uint32() for _ in range(16)])
        np.testing.assert_array_equal(block, singles)

    def test_counter_advances(self):
        rng = ThundeRingRNG(4, seed=1)
        rng.uint32_block(10)
        assert rng.counter == 10
        rng.next_uint32()
        assert rng.counter == 11

    def test_reset_replays(self):
        rng = ThundeRingRNG(4, seed=5)
        first = rng.uint32_block(8)
        rng.reset()
        np.testing.assert_array_equal(first, rng.uint32_block(8))

    def test_different_seeds_differ(self):
        a = ThundeRingRNG(4, seed=1).uint32_block(4)
        b = ThundeRingRNG(4, seed=2).uint32_block(4)
        assert not np.array_equal(a, b)

    def test_fork_is_decorrelated(self):
        rng = ThundeRingRNG(4, seed=1)
        fork = rng.fork(7)
        assert not np.array_equal(rng.uint32_block(4), fork.uint32_block(4))

    def test_uniform_range(self):
        uniforms = ThundeRingRNG(16, seed=3).uniform_block(100)
        assert uniforms.min() >= 0.0
        assert uniforms.max() < 1.0

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            ThundeRingRNG(0)

    def test_negative_cycles(self):
        with pytest.raises(ValueError):
            ThundeRingRNG(2).uint32_block(-1)

    def test_per_lane_uniformity_chi_square(self):
        """Every lane's output is uniform over 16 buckets (chi-square)."""
        rng = ThundeRingRNG(8, seed=11)
        block = rng.uint32_block(4000)
        for lane in range(8):
            buckets = np.bincount(block[:, lane] >> np.uint32(28), minlength=16)
            __, p_value = stats.chisquare(buckets)
            assert p_value > 1e-4, f"lane {lane} failed uniformity (p={p_value})"

    def test_cross_lane_independence(self):
        """Pairwise lane correlations are near zero."""
        rng = ThundeRingRNG(8, seed=13)
        block = rng.uniform_block(5000)
        corr = np.corrcoef(block.T)
        off_diagonal = corr[~np.eye(8, dtype=bool)]
        assert np.abs(off_diagonal).max() < 0.05

    def test_serial_correlation_within_lane(self):
        rng = ThundeRingRNG(2, seed=17)
        series = rng.uniform_block(5000)[:, 0]
        lagged = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert abs(lagged) < 0.05


class TestXorShift128Plus:
    def test_deterministic(self):
        a = XorShift128Plus(seed=5)
        b = XorShift128Plus(seed=5)
        assert [a.next_uint64() for _ in range(5)] == [b.next_uint64() for _ in range(5)]

    def test_range(self):
        rng = XorShift128Plus(seed=9)
        for _ in range(100):
            value = rng.next_uniform()
            assert 0.0 <= value < 1.0

    def test_zero_seed_handled(self):
        rng = XorShift128Plus(seed=0)
        outputs = {rng.next_uint64() for _ in range(10)}
        assert len(outputs) == 10

    def test_uniformity(self):
        rng = XorShift128Plus(seed=21)
        draws = np.array([rng.next_uint32() for _ in range(4000)])
        buckets = np.bincount(draws >> 28, minlength=16)
        __, p_value = stats.chisquare(buckets)
        assert p_value > 1e-4

    def test_mean_is_half(self):
        rng = ThundeRingRNG(4, seed=23)
        assert abs(rng.uniform_block(2000).mean() - 0.5) < 0.02
