"""Roofline analysis."""

from __future__ import annotations

import pytest

from repro.fpga.config import LightRWConfig
from repro.fpga.perfmodel import FPGAPerfModel
from repro.fpga.roofline import RooflinePoint, ridge_point, roofline_point
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.uniform import UniformWalk


class TestRidgePoint:
    def test_k16_ridge(self):
        config = LightRWConfig()
        # 16 items/cycle * 300 MHz over 17.57 GB/s: ~0.27 items/B.
        assert ridge_point(config) == pytest.approx(
            16 * 300e6 / (17.57e9), rel=1e-6
        )

    def test_instances_cancel(self):
        assert ridge_point(LightRWConfig(n_instances=1)) == pytest.approx(
            ridge_point(LightRWConfig(n_instances=4))
        )


class TestRooflinePoint:
    @pytest.fixture
    def breakdown(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:64]
        session = run_walks(labeled_graph, starts, 10, UniformWalk(), PWRSSampler(16, 3))
        items = sum(int(r.degrees.sum()) for r in session.records)
        model = FPGAPerfModel(LightRWConfig(), UniformWalk())
        return model.evaluate(session, record_latency=False), items

    def test_gdrw_is_memory_bound(self, breakdown):
        result, items = breakdown
        point = roofline_point("uniform", result, items)
        # One 4-byte record per item caps intensity at 0.25 < ridge 0.273.
        assert point.intensity_items_per_byte <= 0.25 + 1e-9
        assert point.bound == "memory"
        assert 0 < point.efficiency <= 1.05

    def test_achieved_below_roof(self, breakdown):
        result, items = breakdown
        point = roofline_point("uniform", result, items)
        assert point.achieved_items_per_s <= point.roof_at_intensity * 1.05

    def test_invalid_items(self, breakdown):
        result, __ = breakdown
        with pytest.raises(ValueError):
            roofline_point("x", result, 0)

    def test_synthetic_compute_bound_point(self):
        point = RooflinePoint(
            label="dense-kernel",
            intensity_items_per_byte=10.0,
            achieved_items_per_s=1e9,
            compute_roof=2e9,
            memory_roof_at_intensity=10.0 * 17.57e9,
        )
        assert point.bound == "compute"
        assert point.roof_at_intensity == 2e9

    def test_row_format(self, breakdown):
        result, items = breakdown
        row = roofline_point("uniform", result, items).as_row()
        assert row["bound"] == "memory"
        assert row["efficiency"].endswith("%")
