"""Runtime layer: backend registry, query planner, sharded scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import BACKENDS, LightRW
from repro.core.queries import make_queries
from repro.errors import ConfigError
from repro.runtime import (
    BackendCapabilities,
    BatchScheduler,
    FPGAModelBackend,
    RuntimeContext,
    backend_capabilities,
    backend_names,
    comparison_backends,
    create_backend,
    describe_backends,
    plan_run,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.runtime.timing import FPGAModelBreakdown, TimingBreakdown
from repro.walks.node2vec import Node2VecWalk
from repro.walks.uniform import UniformWalk


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        assert ("fpga-model", "fpga-cycle", "cpu-baseline") == names
        assert BACKENDS == names

    def test_resolve_unknown_is_actionable(self):
        with pytest.raises(ConfigError, match="fpga-model"):
            resolve_backend("gpu")

    def test_descriptions_cover_every_backend(self):
        rows = dict(describe_backends())
        for name in backend_names():
            assert rows[name], name

    def test_comparison_pairs_from_capabilities(self):
        pairs = dict(comparison_backends())
        assert pairs["fpga-model"] == "LightRW"
        assert pairs["cpu-baseline"] == "ThunderRW"
        assert "fpga-cycle" not in pairs

    def test_register_and_unregister_custom_backend(self, labeled_graph):
        @register_backend
        class EchoBackend(FPGAModelBackend):
            name = "test-echo"
            capabilities = BackendCapabilities(
                description="test double", system_label="Echo"
            )

        try:
            assert "test-echo" in backend_names()
            engine = LightRW(
                labeled_graph, backend="test-echo", hardware_scale=64, seed=3
            )
            result = engine.run(UniformWalk(), 4, max_sampled_queries=32)
            assert result.backend == "test-echo"
            assert result.total_steps > 0
        finally:
            unregister_backend("test-echo")
        with pytest.raises(ConfigError):
            resolve_backend("test-echo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):

            @register_backend
            class Clash(FPGAModelBackend):  # noqa: F811 - intentional clash
                name = "fpga-model"


class TestPlanner:
    def test_shard_partition_is_exact(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=37, seed=1)
        plan = plan_run("fpga-model", UniformWalk(), 3, starts, shards=4)
        assert plan.shard_count == 4
        assert sum(s.num_queries for s in plan.shards) == 37
        assert sum(s.total_queries for s in plan.shards) == plan.total_queries
        offsets = [s.offset for s in plan.shards]
        assert offsets == sorted(offsets)
        rebuilt = np.concatenate([s.starts for s in plan.shards])
        np.testing.assert_array_equal(rebuilt, plan.starts)
        for shard in plan.shards:
            np.testing.assert_array_equal(
                shard.query_ids(),
                np.arange(shard.offset, shard.offset + shard.num_queries),
            )

    def test_shard_count_clamped_to_batch(self, tiny_graph):
        starts = make_queries(tiny_graph, shuffle=False)
        plan = plan_run("fpga-model", UniformWalk(), 3, starts, shards=100)
        assert plan.shard_count == starts.size

    def test_invalid_shards(self, tiny_graph):
        starts = make_queries(tiny_graph, shuffle=False)
        with pytest.raises(ConfigError, match="shards"):
            plan_run("fpga-model", UniformWalk(), 3, starts, shards=0)

    def test_unknown_backend(self, tiny_graph):
        starts = make_queries(tiny_graph, shuffle=False)
        with pytest.raises(ConfigError, match="got 'warp'"):
            plan_run("warp", UniformWalk(), 3, starts)

    def test_cycle_batch_cap_fails_fast(self):
        cap = backend_capabilities("fpga-cycle").max_batch_queries
        starts = np.zeros(cap + 1, dtype=np.int64)
        with pytest.raises(ConfigError, match="capped"):
            plan_run("fpga-cycle", UniformWalk(), 2, starts)

    def test_cycle_backend_never_samples(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=50, seed=2)
        plan = plan_run("fpga-cycle", UniformWalk(), 2, starts, max_sampled_queries=8)
        assert plan.num_sampled == 50
        assert plan.total_queries == 50

    def test_model_backend_samples_and_extrapolates(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=50, seed=2)
        plan = plan_run("fpga-model", UniformWalk(), 2, starts, max_sampled_queries=8)
        assert plan.num_sampled == 8
        assert plan.total_queries == 50

    def test_restart_requires_capability(self, tiny_graph):
        starts = make_queries(tiny_graph, shuffle=False)
        with pytest.raises(ConfigError, match="restart"):
            plan_run("cpu-baseline", UniformWalk(), 3, starts, restart_alpha=0.2)


class TestShardParity:
    """Same seed => bit-identical paths, whatever the shard layout."""

    @pytest.mark.parametrize("backend", ["fpga-model", "fpga-cycle", "cpu-baseline"])
    def test_one_vs_four_shards(self, labeled_graph, backend):
        starts = make_queries(labeled_graph, n_queries=24, seed=6)
        engine = LightRW(labeled_graph, backend=backend, hardware_scale=64, seed=6)
        one = engine.run(Node2VecWalk(), 6, starts=starts, shards=1)
        four = engine.run(Node2VecWalk(), 6, starts=starts, shards=4)
        width = min(one.paths.shape[1], four.paths.shape[1])
        np.testing.assert_array_equal(one.paths[:, :width], four.paths[:, :width])
        np.testing.assert_array_equal(one.lengths, four.lengths)
        assert one.total_steps == four.total_steps

    def test_parallel_pool_matches_sequential(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=32, seed=9)
        engine = LightRW(labeled_graph, hardware_scale=64, seed=9)
        seq = engine.run(Node2VecWalk(), 8, starts=starts, shards=4)
        pooled = engine.run(Node2VecWalk(), 8, starts=starts, shards=4, parallel=True)
        np.testing.assert_array_equal(seq.paths, pooled.paths)
        np.testing.assert_array_equal(seq.lengths, pooled.lengths)

    def test_fpga_backends_agree_through_runtime(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=12, seed=6)
        model = LightRW(labeled_graph, backend="fpga-model", hardware_scale=64, seed=6)
        cycle = LightRW(labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=6)
        r_model = model.run(Node2VecWalk(), 5, starts=starts, shards=3)
        r_cycle = cycle.run(Node2VecWalk(), 5, starts=starts, shards=3)
        for q in range(12):
            length = r_model.lengths[q]
            assert r_cycle.lengths[q] == length
            np.testing.assert_array_equal(
                r_model.paths[q, : length + 1], r_cycle.paths[q, : length + 1]
            )

    def test_restart_shard_parity(self, labeled_graph):
        engine = LightRW(labeled_graph, hardware_scale=64, seed=4)
        starts = make_queries(labeled_graph, n_queries=16, seed=4)
        one = engine.run_restart(n_steps=10, alpha=0.3, starts=starts, shards=1)
        four = engine.run_restart(n_steps=10, alpha=0.3, starts=starts, shards=4)
        np.testing.assert_array_equal(one.paths, four.paths)
        np.testing.assert_array_equal(one.lengths, four.lengths)


class TestMergedReports:
    def test_merged_breakdown_totals(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=20, seed=3)
        engine = LightRW(labeled_graph, hardware_scale=64, seed=3)
        merged = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        assert isinstance(merged.breakdown, TimingBreakdown)
        assert isinstance(merged.breakdown, FPGAModelBreakdown)
        assert merged.breakdown.total_steps == merged.total_steps
        assert merged.breakdown.num_queries == 20
        assert merged.query_latency_s.shape == (20,)
        # Legacy attribute access falls through to the native breakdown.
        assert merged.breakdown.cache_accesses > 0
        assert 0 < merged.breakdown.valid_ratio <= 1
        components = merged.breakdown.components()
        assert components["kernel"] > 0
        assert "sampler" in components

    def test_merged_session_is_global(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=20, seed=3)
        engine = LightRW(labeled_graph, hardware_scale=64, seed=3)
        merged = engine.run(UniformWalk(), 5, starts=starts, shards=4)
        assert merged.session is not None
        assert merged.session.num_queries == 20
        seen = np.concatenate([r.query_ids for r in merged.session.records])
        assert seen.max() == 19

    def test_scheduler_rejects_empty_plan(self, labeled_graph):
        backend = create_backend(
            "fpga-model",
            RuntimeContext(
                graph=labeled_graph,
                config=LightRW(labeled_graph).config,
                cpu_spec=LightRW(labeled_graph).cpu_spec,
                seed=0,
            ),
        )
        plan = plan_run(
            "fpga-model", UniformWalk(), 3, make_queries(labeled_graph, n_queries=4)
        )
        object.__setattr__(plan, "shards", ())
        with pytest.raises(ValueError):
            BatchScheduler().execute(backend, plan)

    def test_cycle_merge_keeps_instances(self, labeled_graph):
        starts = make_queries(labeled_graph, n_queries=16, seed=2)
        engine = LightRW(labeled_graph, backend="fpga-cycle", hardware_scale=64, seed=2)
        merged = engine.run(UniformWalk(), 4, starts=starts, shards=2)
        native = merged.breakdown.detail
        assert len(native.instances) == engine.config.n_instances
        assert merged.breakdown.utilization_report()
        assert set(native.paths) == set(range(16))
