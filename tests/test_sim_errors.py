"""Failure injection: the simulator's error paths fail loudly and early."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.fpga.config import LightRWConfig
from repro.fpga.modules import DRAMChannelSim, QueryController
from repro.fpga.sim.fifo import FIFO


class TestDRAMErrorPaths:
    def test_duplicate_port_rejected(self):
        dram = DRAMChannelSim(LightRWConfig())
        dram.register_port("a")
        with pytest.raises(SimulationError, match="duplicate"):
            dram.register_port("a")

    def test_zero_beat_request_rejected(self):
        dram = DRAMChannelSim(LightRWConfig())
        dram.register_port("a")
        with pytest.raises(SimulationError, match="positive beats"):
            dram.request("a", 0)

    def test_pop_without_response(self):
        dram = DRAMChannelSim(LightRWConfig())
        dram.register_port("a")
        with pytest.raises(SimulationError, match="no ready response"):
            dram.pop_response("a", cycle=0)

    def test_response_respects_latency(self):
        config = LightRWConfig()
        dram = DRAMChannelSim(config)
        dram.register_port("a")
        dram.request("a", 1)
        dram.tick(0)  # grant
        latency = config.dram.latency_cycles
        assert not dram.has_response("a", latency - 1)
        assert dram.has_response("a", latency + 1)

    def test_interface_serializes_requests(self):
        """Back-to-back grants are spaced by the service time."""
        config = LightRWConfig()
        dram = DRAMChannelSim(config)
        dram.register_port("a")
        dram.request("a", 4)
        dram.request("a", 4)
        dram.tick(0)
        service = config.dram.request_overhead_cycles + 4
        for cycle in range(1, service):
            dram.tick(cycle)
        assert dram.requests_served == 1  # second not granted yet
        dram.tick(service)
        assert dram.requests_served == 2

    def test_response_backpressure(self):
        """A port with 32 unconsumed responses stops being granted."""
        dram = DRAMChannelSim(LightRWConfig())
        dram.register_port("a")
        for __ in range(40):
            dram.request("a", 1)
        cycle = 0
        for __ in range(4000):
            dram.tick(cycle)
            cycle += 1
        assert dram.requests_served == 32

    def test_round_robin_fairness(self):
        """Two contending ports are served alternately."""
        dram = DRAMChannelSim(LightRWConfig())
        dram.register_port("a")
        dram.register_port("b")
        for __ in range(4):
            dram.request("a", 1)
            dram.request("b", 1)
        service = LightRWConfig().dram.request_overhead_cycles + 1
        grants = []
        cycle = 0
        while dram.requests_served < 8:
            before = dram.requests_served
            dram.tick(cycle)
            if dram.requests_served > before:
                grants.append(cycle)
            cycle += 1
        # 8 grants, spaced exactly one service time apart.
        assert len(grants) == 8
        assert all(b - a == service for a, b in zip(grants, grants[1:]))


class TestQueryControllerErrors:
    def test_query_ids_must_align(self, tiny_graph):
        with pytest.raises(SimulationError, match="align"):
            QueryController(
                tiny_graph,
                starts=np.array([0, 1]),
                n_steps=3,
                config=LightRWConfig(),
                task_fifo=FIFO("t", 4),
                result_fifo=FIFO("r", 4),
                query_ids=np.array([0]),
            )

    def test_sink_start_finishes_immediately(self, tiny_graph):
        controller = QueryController(
            tiny_graph,
            starts=np.array([4]),  # vertex 4 is a sink
            n_steps=3,
            config=LightRWConfig(),
            task_fifo=FIFO("t", 4),
            result_fifo=FIFO("r", 4),
        )
        controller.tick(0)
        assert controller.done()
        assert controller.paths[0] == [4]
