"""Section 5.1's analysis: visit probability correlates with degree.

The degree-aware cache rests on Pr[v] being proportional to v's (weighted)
degree under the stationary distribution of random walks.  These tests
verify the claim empirically with the library's own walkers and exactly
with the spectral stationary distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import chung_lu_graph
from repro.graph.labels import assign_random_weights
from repro.walks import PWRSSampler, StaticWalk, UniformWalk, run_walks
from repro.walks.ppr import visit_frequencies


@pytest.fixture(scope="module")
def connected_graph():
    """A power-law graph restricted to its largest component."""
    import networkx as nx

    from repro.graph.builders import from_edge_list

    graph = chung_lu_graph(300, avg_degree=8.0, seed=11, directed=False)
    nx_graph = graph.to_networkx().to_undirected()
    component = max(nx.connected_components(nx_graph), key=len)
    keep = sorted(component)
    relabel = {old: new for new, old in enumerate(keep)}
    edges = [
        (relabel[u], relabel[v])
        for u, v in nx_graph.edges()
        if u in component and v in component
    ]
    return from_edge_list(
        np.array(edges), num_vertices=len(keep), directed=False, name="component"
    )


def _stationary_exact(graph, weighted: bool) -> np.ndarray:
    """Exact stationary distribution: pi(v) ~ sum of v's edge weights."""
    if weighted and graph.edge_weights is not None:
        mass = np.zeros(graph.num_vertices)
        sources = np.repeat(np.arange(graph.num_vertices), graph.degrees)
        np.add.at(mass, sources, graph.edge_weights.astype(np.float64))
    else:
        mass = graph.degrees.astype(np.float64)
    return mass / mass.sum()


class TestStationaryDistribution:
    def test_unweighted_walks_converge_to_degree_distribution(self, connected_graph):
        """Equation (9) with unit weights: Pr[v] = deg(v) / 2|E|."""
        graph = connected_graph
        starts = np.tile(graph.nonzero_degree_vertices(), 3)
        session = run_walks(graph, starts, 60, UniformWalk(), PWRSSampler(16, 5))
        # Discard the burn-in: count only the tail of each walk.
        tail = session.paths[:, 20:]
        empirical = visit_frequencies(tail, graph.num_vertices)
        exact = _stationary_exact(graph, weighted=False)
        assert np.corrcoef(empirical, exact)[0, 1] > 0.99

    def test_weighted_walks_follow_weighted_degree(self, connected_graph):
        """Equation (9) in full: Pr[v] ~ sum of v's incident weights."""
        graph = assign_random_weights(connected_graph, low=0.5, high=8.0, seed=6)
        starts = np.tile(graph.nonzero_degree_vertices(), 3)
        session = run_walks(graph, starts, 60, StaticWalk(), PWRSSampler(16, 7))
        tail = session.paths[:, 20:]
        empirical = visit_frequencies(tail, graph.num_vertices)
        exact = _stationary_exact(graph, weighted=True)
        assert np.corrcoef(empirical, exact)[0, 1] > 0.98

    def test_degree_is_admissible_cache_heuristic(self, connected_graph):
        """The DAC design claim: ranking vertices by degree ranks them by
        visit probability (rank correlation on the hot set)."""
        from scipy import stats

        graph = connected_graph
        starts = np.tile(graph.nonzero_degree_vertices(), 3)
        session = run_walks(graph, starts, 60, UniformWalk(), PWRSSampler(16, 9))
        empirical = visit_frequencies(session.paths[:, 20:], graph.num_vertices)
        hot = np.argsort(graph.degrees)[::-1][: graph.num_vertices // 4]
        rho, __ = stats.spearmanr(graph.degrees[hot], empirical[hot])
        assert rho > 0.6

    def test_spectral_agreement(self, connected_graph):
        """The degree distribution IS the leading eigenvector (sanity via
        power iteration on the transition matrix)."""
        graph = connected_graph
        n = graph.num_vertices
        pi = np.full(n, 1.0 / n)
        sources = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
        inv_degree = 1.0 / np.maximum(graph.degrees, 1)
        for __ in range(200):
            flow = pi[sources] * inv_degree[sources]
            nxt = np.zeros(n)
            np.add.at(nxt, graph.col_index.astype(np.int64), flow)
            pi = nxt / nxt.sum()
        exact = _stationary_exact(graph, weighted=False)
        assert np.abs(pi - exact).max() < 1e-6
