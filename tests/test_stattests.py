"""Randomness test battery: calibration and discrimination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.rng import ThundeRingRNG
from repro.sampling.stattests import (
    birthday_spacings_test,
    cross_lane_correlation_test,
    frequency_test,
    gap_test,
    run_battery,
    runs_test,
    serial_pair_test,
)


@pytest.fixture(scope="module")
def good_block():
    return ThundeRingRNG(4, seed=17).uint32_block(40_000)


class TestIndividualTests:
    def test_frequency_passes_good(self, good_block):
        bits = np.unpackbits(np.ascontiguousarray(good_block[:, 0]).view(np.uint8))
        assert frequency_test(bits) > 1e-4

    def test_frequency_fails_biased(self):
        bits = np.zeros(10_000, dtype=np.uint8)
        bits[: 4_000] = 1  # 40% ones
        assert frequency_test(bits) < 1e-6

    def test_serial_pair_fails_on_counter(self):
        counter = np.arange(40_000, dtype=np.uint32) << np.uint32(16)
        assert serial_pair_test(counter) < 1e-6

    def test_gap_passes_good(self, good_block):
        uniforms = good_block[:, 1].astype(np.float64) / 2**32
        assert gap_test(uniforms) > 1e-4

    def test_runs_fails_on_alternating(self):
        alternating = np.tile([0.1, 0.9], 5_000)
        assert runs_test(np.asarray(alternating)) < 1e-6

    def test_runs_degenerate(self):
        assert runs_test(np.full(100, 0.5)) == 0.0

    def test_birthday_passes_good(self, good_block):
        assert birthday_spacings_test(good_block[:, 2]) > 1e-5

    def test_birthday_fails_on_low_entropy(self):
        # Only 256 distinct values: spacings collide constantly.
        rng = np.random.default_rng(0)
        coarse = (rng.integers(0, 256, 40_000).astype(np.uint32)) << np.uint32(24)
        assert birthday_spacings_test(coarse) < 1e-6

    def test_birthday_short_input(self):
        assert birthday_spacings_test(np.arange(10, dtype=np.uint32)) == 1.0

    def test_cross_lane_passes_independent(self, good_block):
        assert cross_lane_correlation_test(good_block) > 1e-4

    def test_cross_lane_fails_on_copies(self):
        rng = np.random.default_rng(1)
        lane = rng.integers(0, 2**32, 5_000, dtype=np.uint64).astype(np.uint32)
        block = np.stack([lane, lane], axis=1)
        assert cross_lane_correlation_test(block) < 1e-6


class TestBattery:
    @pytest.mark.parametrize("seed", [17, 99, 12345])
    def test_generator_passes(self, seed):
        result = run_battery(ThundeRingRNG(8, seed=seed), n_samples=40_000)
        assert result.passed, result.summary()

    def test_summary_format(self):
        result = run_battery(ThundeRingRNG(2, seed=5), n_samples=20_000)
        text = result.summary()
        assert "frequency" in text
        assert "battery:" in text

    def test_single_lane_skips_cross_test(self):
        result = run_battery(ThundeRingRNG(1, seed=3), n_samples=20_000)
        assert "cross_lane_correlation" not in result.p_values
