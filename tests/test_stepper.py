"""The vectorized multi-query stepper: equivalence, validity, termination."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.graph.builders import from_edge_list
from repro.graph.generators import chung_lu_graph, path_graph, star_graph
from repro.graph.labels import assign_vertex_labels
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.stepper import (
    InverseTransformSampler,
    PWRSSampler,
    run_walks,
    walk_single_query,
)
from repro.walks.uniform import UniformWalk
from repro.walks.static import StaticWalk


class TestGoldenEquivalence:
    """run_walks + PWRSSampler must be bit-identical to the scalar model."""

    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_uniform_walk(self, labeled_graph, k):
        starts = labeled_graph.nonzero_degree_vertices()[:30]
        session = run_walks(
            labeled_graph, starts, 12, UniformWalk(), PWRSSampler(k=k, seed=3)
        )
        for q in range(starts.size):
            expected = walk_single_query(
                labeled_graph, int(starts[q]), 12, UniformWalk(), k=k, seed=3, query_id=q
            )
            np.testing.assert_array_equal(session.path(q), expected)

    @pytest.mark.parametrize("algorithm", [
        Node2VecWalk(2.0, 0.5),
        MetaPathWalk([0, 1, 2]),
        StaticWalk(),
    ], ids=["node2vec", "metapath", "static"])
    def test_dynamic_walks(self, labeled_graph, algorithm):
        starts = labeled_graph.nonzero_degree_vertices()[:30]
        session = run_walks(
            labeled_graph, starts, 8, algorithm, PWRSSampler(k=8, seed=17)
        )
        for q in range(starts.size):
            expected = walk_single_query(
                labeled_graph, int(starts[q]), 8, algorithm, k=8, seed=17, query_id=q
            )
            np.testing.assert_array_equal(session.path(q), expected)

    def test_determinism_across_runs(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:50]
        a = run_walks(labeled_graph, starts, 10, Node2VecWalk(), PWRSSampler(16, 5))
        b = run_walks(labeled_graph, starts, 10, Node2VecWalk(), PWRSSampler(16, 5))
        np.testing.assert_array_equal(a.paths, b.paths)

    def test_seed_changes_walks(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:50]
        a = run_walks(labeled_graph, starts, 10, UniformWalk(), PWRSSampler(16, 1))
        b = run_walks(labeled_graph, starts, 10, UniformWalk(), PWRSSampler(16, 2))
        assert not np.array_equal(a.paths, b.paths)


class TestPathValidity:
    @pytest.mark.parametrize("sampler_cls", [PWRSSampler, InverseTransformSampler])
    def test_every_transition_is_an_edge(self, labeled_graph, sampler_cls):
        starts = labeled_graph.nonzero_degree_vertices()[:60]
        sampler = sampler_cls(seed=11) if sampler_cls is InverseTransformSampler else sampler_cls(k=16, seed=11)
        session = run_walks(labeled_graph, starts, 15, Node2VecWalk(), sampler)
        for q in range(starts.size):
            path = session.path(q)
            for u, v in zip(path[:-1], path[1:]):
                assert labeled_graph.has_edge(int(u), int(v)), (q, u, v)

    def test_lengths_match_padding(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:40]
        session = run_walks(labeled_graph, starts, 9, UniformWalk(), PWRSSampler(8, 2))
        for q in range(starts.size):
            length = session.lengths[q]
            assert (session.paths[q, : length + 1] >= 0).all()
            assert (session.paths[q, length + 1 :] == -1).all()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_walks_stay_on_graph(self, seed):
        graph = chung_lu_graph(128, avg_degree=6.0, seed=seed % 7, directed=False)
        starts = graph.nonzero_degree_vertices()[:20]
        if starts.size == 0:
            return
        session = run_walks(graph, starts, 6, UniformWalk(), PWRSSampler(4, seed))
        assert session.paths.max() < graph.num_vertices
        for q in range(starts.size):
            path = session.path(q)
            for u, v in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(u), int(v))


class TestTermination:
    def test_sink_terminates_walk(self):
        graph = path_graph(4)  # 3 is a sink
        session = run_walks(graph, np.array([0]), 10, UniformWalk(), PWRSSampler(4, 0))
        np.testing.assert_array_equal(session.path(0), [0, 1, 2, 3])
        assert session.lengths[0] == 3

    def test_start_on_sink(self):
        graph = path_graph(3)
        session = run_walks(graph, np.array([2]), 5, UniformWalk(), PWRSSampler(4, 0))
        assert session.lengths[0] == 0
        np.testing.assert_array_equal(session.path(0), [2])

    def test_metapath_dead_end(self):
        """A schema no neighbor satisfies terminates the query."""
        graph = star_graph(4)
        graph = assign_vertex_labels(graph, n_labels=1, seed=0)
        # Schema requires label 5, which no vertex has -> dead end at step 0.
        walk = MetaPathWalk([0, 5])
        # Bypass label-range validation by crafting the schema within range:
        graph.vertex_labels[:] = 0
        session = run_walks(graph, np.array([0]), 5, walk, PWRSSampler(4, 1))
        assert session.lengths[0] == 0

    def test_zero_steps(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:5]
        session = run_walks(labeled_graph, starts, 0, UniformWalk(), PWRSSampler(4, 0))
        assert session.total_steps == 0
        assert session.paths.shape == (5, 1)


class TestTraceRecords:
    def test_records_are_consistent(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:25]
        session = run_walks(
            labeled_graph, starts, 6, Node2VecWalk(), PWRSSampler(8, 4)
        )
        for record in session.records:
            np.testing.assert_array_equal(
                record.degrees, labeled_graph.degrees[record.curr]
            )
            has_prev = record.prev >= 0
            np.testing.assert_array_equal(
                record.prev_degrees[has_prev],
                labeled_graph.degrees[record.prev[has_prev]],
            )
            assert (record.prev_degrees[~has_prev] == 0).all()
            # next_vertex either -1 or an actual neighbor of curr.
            moved = record.next_vertex >= 0
            for u, v in zip(record.curr[moved], record.next_vertex[moved]):
                assert labeled_graph.has_edge(int(u), int(v))

    def test_prev_tracks_path(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:10]
        session = run_walks(labeled_graph, starts, 5, Node2VecWalk(), PWRSSampler(8, 6))
        for record in session.records[1:]:
            for idx, qid in enumerate(record.query_ids):
                step = record.step
                assert record.prev[idx] == session.paths[qid, step - 1]
                assert record.curr[idx] == session.paths[qid, step]

    def test_record_trace_disabled(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:10]
        session = run_walks(
            labeled_graph, starts, 5, UniformWalk(), PWRSSampler(8, 0), record_trace=False
        )
        assert session.records == []


class TestValidationErrors:
    def test_bad_starts(self, labeled_graph):
        with pytest.raises(QueryError):
            run_walks(labeled_graph, np.array([-1]), 3, UniformWalk(), PWRSSampler(4, 0))
        with pytest.raises(QueryError):
            run_walks(
                labeled_graph,
                np.array([labeled_graph.num_vertices]),
                3,
                UniformWalk(),
                PWRSSampler(4, 0),
            )

    def test_negative_steps(self, labeled_graph):
        with pytest.raises(QueryError):
            run_walks(labeled_graph, np.array([0]), -1, UniformWalk(), PWRSSampler(4, 0))

    def test_sampler_requires_attach(self, labeled_graph):
        from repro.errors import ConfigError

        sampler = PWRSSampler(4, 0)
        with pytest.raises(ConfigError):
            sampler.select(None, None, None)


class TestInverseTransformSampler:
    def test_distribution_on_star(self):
        """From the hub of a weighted star, picks follow the weights."""
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        weights = np.array([1.0, 2.0, 7.0], dtype=np.float32)
        graph = from_edge_list(edges, num_vertices=4, weights=weights)
        counts = np.zeros(4)
        starts = np.zeros(6000, dtype=np.int64)
        session = run_walks(graph, starts, 1, StaticWalk(), InverseTransformSampler(3))
        picked = session.paths[:, 1]
        for vertex in (1, 2, 3):
            counts[vertex] = (picked == vertex).sum()
        fractions = counts[1:] / counts.sum()
        np.testing.assert_allclose(fractions, weights / weights.sum(), atol=0.03)

    def test_pwrs_matches_itx_distribution(self):
        """Both samplers draw from the same transition distribution."""
        edges = np.array([[0, 1], [0, 2]])
        weights = np.array([1.0, 3.0], dtype=np.float32)
        graph = from_edge_list(edges, num_vertices=3, weights=weights)
        starts = np.zeros(8000, dtype=np.int64)
        itx = run_walks(graph, starts, 1, StaticWalk(), InverseTransformSampler(1))
        pwrs = run_walks(graph, starts, 1, StaticWalk(), PWRSSampler(4, 1))
        f_itx = (itx.paths[:, 1] == 2).mean()
        f_pwrs = (pwrs.paths[:, 1] == 2).mean()
        assert abs(f_itx - 0.75) < 0.02
        assert abs(f_pwrs - 0.75) < 0.02
