"""Induced subgraphs and component extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_list
from repro.graph.generators import chung_lu_graph, cycle_graph
from repro.graph.subgraph import induced_subgraph, largest_component_subgraph


class TestInducedSubgraph:
    def test_edges_preserved_within(self, tiny_graph):
        result = induced_subgraph(tiny_graph, np.array([0, 1, 2]))
        sub = result.graph
        assert sub.num_vertices == 3
        # Surviving edges: 0->1, 0->2, 1->2, 2->0 (3 involving vertex 3 cut).
        assert sub.num_edges == 4
        assert sub.has_edge(0, 1)
        assert sub.has_edge(2, 0)
        assert not sub.has_edge(1, 0)

    def test_attributes_carried(self, labeled_graph):
        keep = labeled_graph.nonzero_degree_vertices()[:50]
        result = induced_subgraph(labeled_graph, keep)
        sub = result.graph
        np.testing.assert_array_equal(
            sub.vertex_labels, labeled_graph.vertex_labels[result.new_to_old]
        )
        # Spot-check an edge weight follows its edge.
        v = next(v for v in range(sub.num_vertices) if sub.degree(v) > 0)
        w = int(sub.neighbors(v)[0])
        original_v = int(result.new_to_old[v])
        original_w = int(result.new_to_old[w])
        start, __ = labeled_graph.neighbor_slice(original_v)
        position = start + int(
            np.searchsorted(labeled_graph.neighbors(original_v), original_w)
        )
        assert sub.neighbor_weights(v)[0] == labeled_graph.edge_weights[position]

    def test_translate_back(self, tiny_graph):
        result = induced_subgraph(tiny_graph, np.array([1, 3]))
        np.testing.assert_array_equal(
            result.translate_back(np.array([0, 1, -1])), [1, 3, -1]
        )

    def test_mapping_consistency(self, tiny_graph):
        result = induced_subgraph(tiny_graph, np.array([0, 2, 4]))
        for new_id, old_id in enumerate(result.new_to_old.tolist()):
            assert result.old_to_new[old_id] == new_id

    def test_col_index_stays_sorted(self, labeled_graph):
        keep = labeled_graph.nonzero_degree_vertices()[::2]
        result = induced_subgraph(labeled_graph, keep)
        assert result.graph.neighbors_sorted()

    def test_invalid_inputs(self, tiny_graph):
        with pytest.raises(GraphFormatError):
            induced_subgraph(tiny_graph, np.array([], dtype=np.int64))
        with pytest.raises(GraphFormatError):
            induced_subgraph(tiny_graph, np.array([99]))


class TestLargestComponent:
    def test_two_components(self):
        # Two triangles, one bigger blob.
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (5, 6), (6, 7)]
        graph = from_edge_list(np.array(edges), num_vertices=8, directed=False)
        result = largest_component_subgraph(graph)
        assert result.graph.num_vertices == 5
        np.testing.assert_array_equal(result.new_to_old, [3, 4, 5, 6, 7])

    def test_connected_graph_identity(self):
        graph = cycle_graph(10)
        result = largest_component_subgraph(graph)
        assert result.graph.num_vertices == 10
        np.testing.assert_array_equal(result.new_to_old, np.arange(10))

    def test_matches_networkx(self):
        import networkx as nx

        graph = chung_lu_graph(200, avg_degree=3.0, seed=9, directed=False)
        result = largest_component_subgraph(graph)
        nx_graph = graph.to_networkx().to_undirected()
        expected = max(nx.connected_components(nx_graph), key=len)
        assert result.graph.num_vertices == len(expected)
        assert set(result.new_to_old.tolist()) == expected

    def test_walks_run_on_component(self):
        from repro.walks import PWRSSampler, UniformWalk, run_walks

        graph = chung_lu_graph(200, avg_degree=3.0, seed=9, directed=False)
        result = largest_component_subgraph(graph)
        starts = result.graph.nonzero_degree_vertices()[:20]
        session = run_walks(result.graph, starts, 10, UniformWalk(), PWRSSampler(8, 1))
        assert session.total_steps > 0
