"""Design-space exploration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpga.sweep import (
    DesignPoint,
    DesignSpaceExplorer,
    default_grid,
    sweep_design_space,
)
from repro.walks.metapath import MetaPathWalk
from repro.walks.uniform import UniformWalk


@pytest.fixture(scope="module")
def swept(request):
    from repro.graph.generators import chung_lu_graph

    graph = chung_lu_graph(256, avg_degree=8.0, seed=5, directed=False)
    starts = graph.nonzero_degree_vertices()[:64]
    grid = {"k": [4, 16], "long_beats": [0, 32], "cache_bits": [8], "n_instances": [1, 4]}
    points, frontier = sweep_design_space(
        graph, UniformWalk(), "uniform", 5, starts, grid=grid, hardware_scale=64
    )
    return points, frontier, grid


class TestSweep:
    def test_grid_size(self, swept):
        points, __, grid = swept
        expected = (
            len(grid["k"]) * len(grid["long_beats"]) * len(grid["cache_bits"])
            * len(grid["n_instances"])
        )
        assert len(points) == expected

    def test_frontier_subset_and_nondominated(self, swept):
        points, frontier, __ = swept
        assert frontier
        assert set(p.label for p in frontier) <= set(p.label for p in points)
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    b.steps_per_second >= a.steps_per_second
                    and b.peak_utilization <= a.peak_utilization
                    and (
                        b.steps_per_second > a.steps_per_second
                        or b.peak_utilization < a.peak_utilization
                    )
                )
                assert not dominates, (a.label, b.label)

    def test_frontier_sorted_by_utilization(self, swept):
        __, frontier, __ = swept
        utilizations = [p.peak_utilization for p in frontier]
        assert utilizations == sorted(utilizations)

    def test_point_rows(self, swept):
        points, __, __ = swept
        row = points[0].as_row()
        assert "config" in row and "steps_per_s" in row

    def test_missing_session_rejected(self):
        explorer = DesignSpaceExplorer(MetaPathWalk([0, 1]), "metapath")
        with pytest.raises(ConfigError):
            explorer.evaluate({}, default_grid())

    def test_default_grid_contains_paper_point(self):
        grid = default_grid()
        assert 16 in grid["k"]
        assert 32 in grid["long_beats"]
        assert 12 in grid["cache_bits"]
        assert 4 in grid["n_instances"]

    def test_pareto_ignores_oversized(self):
        big = DesignPoint(
            config=None, steps_per_second=1e9, bottleneck="memory",
            peak_utilization=1.5, fits=False,
        )
        small = DesignPoint(
            config=None, steps_per_second=1e6, bottleneck="memory",
            peak_utilization=0.2, fits=True,
        )
        frontier = DesignSpaceExplorer.pareto_frontier([big, small])
        assert frontier == [small]
