"""Query termination conditions (Algorithm 2.1's Q.is_end())."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.graph.generators import cycle_graph, path_graph
from repro.graph.labels import assign_vertex_labels
from repro.walks.stepper import PWRSSampler, run_walks
from repro.walks.termination import (
    FixedLength,
    TargetLabel,
    TargetVertex,
    apply_termination,
)
from repro.walks.uniform import UniformWalk


@pytest.fixture
def cycle_session():
    graph = cycle_graph(8)
    starts = np.zeros(4, dtype=np.int64)
    return run_walks(graph, starts, 10, UniformWalk(), PWRSSampler(4, 0))


class TestFixedLength:
    def test_truncates(self, cycle_session):
        truncated = apply_termination(cycle_session, FixedLength(3))
        assert (truncated.lengths == 3).all()
        np.testing.assert_array_equal(truncated.path(0), [0, 1, 2, 3])
        assert (truncated.paths[:, 4:] == -1).all()

    def test_longer_than_walk_is_noop(self, cycle_session):
        truncated = apply_termination(cycle_session, FixedLength(99))
        np.testing.assert_array_equal(truncated.paths, cycle_session.paths)

    def test_zero(self, cycle_session):
        truncated = apply_termination(cycle_session, FixedLength(0))
        assert (truncated.lengths == 0).all()
        assert (truncated.paths[:, 1:] == -1).all()

    def test_negative_rejected(self):
        with pytest.raises(QueryError):
            FixedLength(-1)

    def test_describe(self):
        assert "5" in FixedLength(5).describe()


class TestTargetVertex:
    def test_stops_at_first_hit(self, cycle_session):
        # The deterministic cycle walk 0->1->...: vertex 3 is hit at step 3.
        truncated = apply_termination(cycle_session, TargetVertex((3,)))
        assert (truncated.lengths == 3).all()
        assert (truncated.paths[:, 3] == 3).all()

    def test_start_on_target_still_walks(self):
        graph = cycle_graph(4)
        session = run_walks(
            graph, np.zeros(2, dtype=np.int64), 6, UniformWalk(), PWRSSampler(4, 0)
        )
        truncated = apply_termination(session, TargetVertex((0,)))
        # The walk returns to 0 after 4 steps on a 4-cycle.
        assert (truncated.lengths == 4).all()

    def test_unreached_target_keeps_full_walk(self, cycle_session):
        graph_vertices = cycle_session.graph.num_vertices
        truncated = apply_termination(
            cycle_session, TargetVertex((graph_vertices - 1,))
        )
        # Deterministic cycle reaches 7 at step 7.
        assert (truncated.lengths == 7).all()

    def test_multiple_targets_earliest_wins(self, cycle_session):
        truncated = apply_termination(cycle_session, TargetVertex((5, 2)))
        assert (truncated.lengths == 2).all()

    def test_empty_targets_rejected(self):
        with pytest.raises(QueryError):
            TargetVertex(())


class TestTargetLabel:
    def test_stops_at_label(self):
        graph = assign_vertex_labels(cycle_graph(8), n_labels=2, seed=3)
        session = run_walks(
            graph, np.zeros(3, dtype=np.int64), 8, UniformWalk(), PWRSSampler(4, 1)
        )
        label = int(graph.vertex_labels[2])
        truncated = apply_termination(session, TargetLabel(label))
        for q in range(3):
            path = truncated.path(q)
            if truncated.lengths[q] < session.lengths[q]:
                assert graph.vertex_labels[path[-1]] == label
            # No earlier interior vertex carries the label.
            for vertex in path[1:-1]:
                assert graph.vertex_labels[vertex] != label

    def test_requires_labels(self, cycle_session):
        with pytest.raises(QueryError):
            apply_termination(cycle_session, TargetLabel(0))

    def test_absent_label_is_noop(self):
        graph = assign_vertex_labels(path_graph(5), n_labels=2, seed=1)
        session = run_walks(
            graph, np.zeros(2, dtype=np.int64), 4, UniformWalk(), PWRSSampler(4, 0)
        )
        truncated = apply_termination(session, TargetLabel(99))
        np.testing.assert_array_equal(truncated.lengths, session.lengths)


class TestSessionIntegrity:
    def test_records_preserved(self, cycle_session):
        truncated = apply_termination(cycle_session, FixedLength(2))
        assert truncated.records is cycle_session.records

    def test_original_untouched(self, cycle_session):
        before = cycle_session.paths.copy()
        apply_termination(cycle_session, FixedLength(1))
        np.testing.assert_array_equal(cycle_session.paths, before)

    def test_padding_consistent(self, cycle_session):
        truncated = apply_termination(cycle_session, FixedLength(4))
        for q in range(truncated.num_queries):
            length = truncated.lengths[q]
            assert (truncated.paths[q, : length + 1] >= 0).all()
            assert (truncated.paths[q, length + 1 :] == -1).all()
