"""Pipeline event tracing and its Chrome-trace export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.fpga.accelerator import LightRWAcceleratorSim
from repro.fpga.config import LightRWConfig
from repro.fpga.sim.trace import PipelineTracer, TraceEvent
from repro.obs import chrome_trace, write_chrome_trace
from repro.walks.uniform import UniformWalk


class TestPipelineTracer:
    def test_record_and_read(self):
        tracer = PipelineTracer()
        tracer.record(5, "m", "evt", qid=1)
        tracer.record(7, "m", "evt", qid=2)
        events = tracer.events()
        assert len(events) == 2
        assert events[0].cycle == 5
        assert events[1].info["qid"] == 2

    def test_ring_buffer_keeps_latest(self):
        tracer = PipelineTracer(max_events=3)
        for i in range(10):
            tracer.record(i, "m", "evt")
        assert len(tracer) == 3
        assert [e.cycle for e in tracer.events()] == [7, 8, 9]
        assert tracer.total_recorded == 10

    def test_filters(self):
        tracer = PipelineTracer()
        tracer.record(1, "a", "x", qid=1)
        tracer.record(2, "b", "x", qid=2)
        tracer.record(3, "a", "y", qid=1)
        assert len(tracer.filter(module="a")) == 2
        assert len(tracer.filter(event="x")) == 2
        assert len(tracer.filter(qid=1)) == 2
        assert len(tracer.filter(module="a", event="x", qid=1)) == 1

    def test_counts_and_text(self):
        tracer = PipelineTracer()
        tracer.record(1, "m", "x")
        tracer.record(2, "m", "x")
        tracer.record(3, "m", "y", foo=7)
        assert tracer.counts() == {"x": 2, "y": 1}
        text = tracer.to_text(last=1)
        assert "foo=7" in text

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PipelineTracer(max_events=0)

    def test_event_format(self):
        event = TraceEvent(cycle=12, module="dram", event="grant", info={"beats": 4})
        assert "dram" in event.format()
        assert "beats=4" in event.format()


class TestTracedSimulation:
    @pytest.fixture
    def traced_run(self, labeled_graph):
        config = LightRWConfig(n_instances=2, max_inflight=8).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:10]
        sim = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=6)
        return sim.run(starts, 4, trace=True), starts

    def test_trace_present_only_when_requested(self, labeled_graph):
        config = LightRWConfig(n_instances=1, max_inflight=4).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:4]
        sim = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=1)
        assert sim.run(starts, 2).tracer is None
        assert sim.run(starts, 2, trace=True).tracer is not None

    def test_admissions_and_finishes_complete(self, traced_run):
        result, starts = traced_run
        tracer = result.tracer
        counts = tracer.counts()
        assert counts["query-admitted"] == starts.size
        assert counts["query-finished"] == starts.size

    def test_cache_events_match_stats(self, traced_run):
        result, __ = traced_run
        counts = result.tracer.counts()
        hits = sum(s.cache_hits for s in result.instances)
        misses = sum(s.cache_misses for s in result.instances)
        assert counts.get("cache-hit", 0) == hits
        assert counts.get("cache-miss", 0) == misses

    def test_dram_grants_match_requests(self, traced_run):
        result, __ = traced_run
        grants = len(result.tracer.filter(event="dram-grant"))
        assert grants == sum(s.dram_requests for s in result.instances)

    def test_query_timeline_ordered_and_complete(self, traced_run):
        result, starts = traced_run
        timeline = result.tracer.query_timeline(0)
        assert timeline[0].event == "query-admitted"
        assert timeline[-1].event == "query-finished"
        cycles = [e.cycle for e in timeline]
        assert cycles == sorted(cycles)
        # One sample + one retire per executed step.
        samples = [e for e in timeline if e.event == "sample"]
        retires = [e for e in timeline if e.event == "step-retired"]
        assert len(samples) == len(retires)
        # At least one sample per step actually walked (dead-end attempts
        # add one more).
        assert len(samples) >= len(result.paths[0]) - 1

    def test_tracing_does_not_change_walks(self, labeled_graph):
        config = LightRWConfig(n_instances=1, max_inflight=4).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:6]
        sim = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=9)
        plain = sim.run(starts, 4)
        traced = sim.run(starts, 4, trace=True)
        for q in range(6):
            np.testing.assert_array_equal(plain.path(q), traced.path(q))
        assert plain.cycles == traced.cycles

    def test_event_filter_composes_with_module_filter(self, traced_run):
        result, __ = traced_run
        tracer = result.tracer
        hits = tracer.filter(event="cache-hit")
        # Every hit comes from an info-loader; the composed filter must be
        # the intersection, not a union or an override.
        per_module = [
            tracer.filter(module=f"inst{i}.info-loader", event="cache-hit")
            for i in range(2)
        ]
        assert sum(len(events) for events in per_module) == len(hits)
        assert all(
            e.module == "inst0.info-loader" and e.event == "cache-hit"
            for e in per_module[0]
        )
        # A module that never emits the event yields nothing.
        assert tracer.filter(module="inst0.wrs-sampler", event="cache-hit") == []


class TestChromeTraceExport:
    @pytest.fixture
    def traced_run(self, labeled_graph):
        config = LightRWConfig(n_instances=2, max_inflight=8).scaled(64)
        starts = labeled_graph.nonzero_degree_vertices()[:10]
        sim = LightRWAcceleratorSim(labeled_graph, config, UniformWalk(), seed=6)
        return sim.run(starts, 4, trace=True)

    def test_round_trip_is_valid_json(self, traced_run, tmp_path):
        path = write_chrome_trace(
            tmp_path / "trace.json",
            tracer=traced_run.tracer,
            cycle_result=traced_run,
            frequency_hz=traced_run.config.frequency_hz,
        )
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        events = loaded["traceEvents"]
        assert events, "export produced no events"
        for event in events:
            assert {"name", "ph", "pid"} <= set(event)

    def test_timestamps_monotonic(self, traced_run):
        trace = chrome_trace(
            tracer=traced_run.tracer,
            cycle_result=traced_run,
            frequency_hz=traced_run.config.frequency_hz,
        )
        ts = [e["ts"] for e in trace["traceEvents"] if "ts" in e]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_every_pipeline_module_has_a_span(self, traced_run):
        trace = chrome_trace(
            cycle_result=traced_run, frequency_hz=traced_run.config.frequency_hz
        )
        spans = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        for module in (
            "controller",
            "info-loader",
            "burst-cmd-gen",
            "merge",
            "weight-updater",
            "wrs-sampler",
        ):
            assert any(module in name for name in spans), module

    def test_cycle_to_microsecond_conversion(self, traced_run):
        freq = traced_run.config.frequency_hz
        trace = chrome_trace(tracer=traced_run.tracer, frequency_hz=freq)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == len(traced_run.tracer)
        last = max(e.cycle for e in traced_run.tracer.events())
        expected_us = last / freq * 1e6
        assert max(e["ts"] for e in instants) == pytest.approx(expected_us)

    def test_overflowed_tracer_exports_latest_window(self):
        tracer = PipelineTracer(max_events=4)
        for i in range(20):
            tracer.record(i, "m", "evt")
        trace = chrome_trace(tracer=tracer, frequency_hz=1e6)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 4
        # Cycles 16..19 at 1 MHz are exactly 16..19 µs.
        assert [e["ts"] for e in instants] == [16.0, 17.0, 18.0, 19.0]

    def test_empty_sources_give_empty_but_valid_trace(self):
        trace = chrome_trace()
        assert json.loads(json.dumps(trace)) == trace
        # Only process-name metadata remains; no timed events.
        assert all(e["ph"] == "M" for e in trace["traceEvents"])
