"""Utility helpers and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.units import (
    GIGA,
    bandwidth_gbps,
    cycles_to_seconds,
    format_bytes,
    format_rate,
    seconds_to_cycles,
)


class TestUnits:
    def test_cycle_conversions_roundtrip(self):
        assert cycles_to_seconds(300e6, 300e6) == pytest.approx(1.0)
        assert seconds_to_cycles(2.0, 300e6) == pytest.approx(600e6)
        assert seconds_to_cycles(cycles_to_seconds(12345, 1e9), 1e9) == pytest.approx(12345)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1, 0)
        with pytest.raises(ValueError):
            seconds_to_cycles(1, -1)

    def test_bandwidth(self):
        assert bandwidth_gbps(17.57 * GIGA, 1.0) == pytest.approx(17.57)
        with pytest.raises(ValueError):
            bandwidth_gbps(1, 0)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(68_900_000 * 4) == "275.6 MB"

    def test_format_rate(self):
        assert "steps/s" in format_rate(4.8e7)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.GraphFormatError,
            errors.QueryError,
            errors.ConfigError,
            errors.SimulationError,
        ):
            assert issubclass(exc, errors.ReproError)
            assert issubclass(exc, Exception)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConfigError("bad k")
