"""Automated reproduction verdicts."""

from __future__ import annotations

import json

import pytest

from repro.bench.verdict import CHECKS, Verdict, score_reproduction, summary


def _write(tmp_path, name, rows):
    payload = {"name": name, "title": name, "paper_expectation": "", "rows": rows}
    (tmp_path / f"{name}.json").write_text(json.dumps(payload))


class TestChecks:
    def test_fig6_passes_on_good_shape(self, tmp_path):
        _write(tmp_path, "fig6", [
            {"burst_length": 1, "bandwidth_gbps": 3.2, "valid_data_ratio": 0.9},
            {"burst_length": 64, "bandwidth_gbps": 17.57, "valid_data_ratio": 0.1},
        ])
        verdict = next(v for v in score_reproduction(tmp_path) if v.experiment == "fig6")
        assert verdict.passed

    def test_fig6_fails_on_wrong_shape(self, tmp_path):
        _write(tmp_path, "fig6", [
            {"burst_length": 1, "bandwidth_gbps": 17.57, "valid_data_ratio": 0.1},
            {"burst_length": 64, "bandwidth_gbps": 3.0, "valid_data_ratio": 0.9},
        ])
        verdict = next(v for v in score_reproduction(tmp_path) if v.experiment == "fig6")
        assert not verdict.passed

    def test_fig14_requires_youtube_smallest(self, tmp_path):
        _write(tmp_path, "fig14", [
            {"graph": "youtube", "app": "MetaPath", "speedup": 9.0},
            {"graph": "uk2002", "app": "MetaPath", "speedup": 3.0},
        ])
        verdict = next(v for v in score_reproduction(tmp_path) if v.experiment == "fig14")
        assert not verdict.passed

    def test_missing_file_fails_gracefully(self, tmp_path):
        verdicts = score_reproduction(tmp_path)
        assert all(not v.passed for v in verdicts)
        assert all("missing" in v.detail for v in verdicts)

    def test_malformed_rows_fail_gracefully(self, tmp_path):
        _write(tmp_path, "table5", [{"oops": 1}])
        verdict = next(v for v in score_reproduction(tmp_path) if v.experiment == "table5")
        assert not verdict.passed
        assert "malformed" in verdict.detail


class TestOnRealResults:
    @pytest.fixture(scope="class")
    def results_dir(self):
        from pathlib import Path

        directory = Path(__file__).resolve().parent.parent / "results"
        if not (directory / "fig14.json").exists():
            pytest.skip("full results not generated in this checkout")
        return directory

    def test_all_claims_reproduced(self, results_dir):
        verdicts = score_reproduction(results_dir)
        failed = [v for v in verdicts if not v.passed]
        assert not failed, summary(verdicts)

    def test_every_check_has_a_claim(self):
        for name, (claim, check) in CHECKS.items():
            assert claim
            assert callable(check)


class TestSummary:
    def test_scoreboard_format(self):
        verdicts = [
            Verdict("fig6", "claim", True, "good"),
            Verdict("fig14", "claim", False, "bad"),
        ]
        text = summary(verdicts)
        assert "[PASS] fig6" in text
        assert "[FAIL] fig14" in text
        assert "reproduced 1/2" in text
