"""WalkSession container semantics and remaining stepper surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import cycle_graph, star_graph
from repro.walks.stepper import (
    InverseTransformSampler,
    PWRSSampler,
    run_walks,
    walk_single_query,
)
from repro.walks.uniform import UniformWalk


class TestWalkSessionContainer:
    @pytest.fixture
    def session(self, labeled_graph):
        starts = labeled_graph.nonzero_degree_vertices()[:12]
        return run_walks(labeled_graph, starts, 7, UniformWalk(), PWRSSampler(8, 3))

    def test_counts(self, session):
        assert session.num_queries == 12
        assert session.total_steps == int(session.lengths.sum())
        assert session.algorithm == "uniform"
        assert session.sampler == "pwrs"

    def test_path_accessor_matches_matrix(self, session):
        for q in range(session.num_queries):
            np.testing.assert_array_equal(
                session.path(q), session.paths[q, : session.lengths[q] + 1]
            )

    def test_starts_preserved(self, session):
        np.testing.assert_array_equal(session.paths[:, 0], session.starts)

    def test_record_steps_sum_to_lengths(self, session):
        per_query = np.zeros(session.num_queries, dtype=np.int64)
        for record in session.records:
            moved = record.next_vertex >= 0
            np.add.at(per_query, record.query_ids[moved], 1)
        np.testing.assert_array_equal(per_query, session.lengths)

    def test_record_n_queries(self, session):
        assert session.records[0].n_queries == session.num_queries


class TestSamplerStateAccounting:
    def test_pwrs_counters_advance_by_batches(self):
        """After one step on a hub of degree d, the query's RNG counter
        sits at ceil(d / k) — the hardware's cycle consumption."""
        graph = star_graph(21)  # hub degree 21
        sampler = PWRSSampler(k=8, seed=5)
        run_walks(graph, np.array([0]), 1, UniformWalk(), sampler)
        assert int(sampler._counters[0]) == -(-21 // 8)

    def test_itx_counters_advance_by_steps(self):
        graph = cycle_graph(6)
        sampler = InverseTransformSampler(seed=5)
        run_walks(graph, np.array([0, 1]), 4, UniformWalk(), sampler)
        assert int(sampler._counters[0]) == 4
        assert int(sampler._counters[1]) == 4

    def test_fork_single_matches_scalar_reference(self, labeled_graph):
        """PWRSSampler.fork_single hands out the exact scalar RNG."""
        sampler = PWRSSampler(k=4, seed=11)
        rng = sampler.fork_single(3)
        path = walk_single_query(
            labeled_graph,
            int(labeled_graph.nonzero_degree_vertices()[3]),
            4,
            UniformWalk(),
            k=4,
            seed=11,
            query_id=3,
        )
        # The forked RNG starts at counter zero like the reference walk's.
        assert rng.counter == 0
        assert path.size >= 1


class TestDeterministicTopologies:
    def test_cycle_walk_is_forced(self):
        graph = cycle_graph(5)
        session = run_walks(graph, np.array([2]), 7, UniformWalk(), PWRSSampler(4, 0))
        np.testing.assert_array_equal(
            session.path(0), (np.arange(8) + 2) % 5
        )

    def test_star_hub_reaches_leaf_and_stops(self):
        graph = star_graph(8)  # directed: leaves are sinks
        session = run_walks(graph, np.array([0, 0, 0]), 5, UniformWalk(), PWRSSampler(4, 1))
        assert (session.lengths == 1).all()
        assert (session.paths[:, 1] >= 1).all()

    def test_undirected_star_bounces(self):
        graph = star_graph(8, directed=False)
        session = run_walks(graph, np.array([0]), 6, UniformWalk(), PWRSSampler(4, 2))
        path = session.path(0)
        assert session.lengths[0] == 6
        np.testing.assert_array_equal(path[::2], np.zeros(4))  # hub every other
        assert (path[1::2] >= 1).all()
