"""Walk algorithms: the weight-update functions of Equations (1) and (2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.graph.builders import from_edge_list
from repro.graph.labels import assign_edge_labels
from repro.walks.base import StepContext, WEIGHT_SCALE, quantize_weights
from repro.walks.metapath import MetaPathWalk
from repro.walks.node2vec import Node2VecWalk
from repro.walks.static import StaticWalk
from repro.walks.uniform import UniformWalk


def _context_for(graph, vertex, prev=-1, step=0):
    """Single-query StepContext over all of ``vertex``'s out-edges."""
    begin, end = graph.neighbor_slice(vertex)
    degree = end - begin
    return StepContext(
        graph=graph,
        step=step,
        curr=np.array([vertex]),
        prev=np.array([prev]),
        degrees=np.array([degree]),
        seg_starts=np.array([0]),
        edge_query=np.zeros(degree, dtype=np.int64),
        dst=graph.col_index[begin:end].astype(np.int64),
        static_weights=(
            graph.edge_weights[begin:end].astype(np.float64)
            if graph.edge_weights is not None
            else np.ones(degree)
        ),
        edge_positions=np.arange(begin, end, dtype=np.int64),
        edge_keys_sorted=graph.edge_keys(),
    )


class TestQuantize:
    def test_zero_stays_zero(self):
        np.testing.assert_array_equal(quantize_weights(np.array([0.0])), [0])

    def test_positive_never_becomes_zero(self):
        quantized = quantize_weights(np.array([1e-9]))
        assert quantized[0] == 1

    def test_scale(self):
        np.testing.assert_array_equal(
            quantize_weights(np.array([1.0, 2.5])), [WEIGHT_SCALE, int(2.5 * WEIGHT_SCALE)]
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quantize_weights(np.array([-0.5]))


class TestUniformAndStatic:
    def test_uniform_all_ones(self, tiny_graph):
        ctx = _context_for(tiny_graph, 0)
        np.testing.assert_array_equal(UniformWalk().dynamic_weights(ctx), [1, 1, 1])

    def test_static_returns_edge_weights(self, tiny_graph):
        ctx = _context_for(tiny_graph, 0)
        np.testing.assert_allclose(StaticWalk().dynamic_weights(ctx), [3, 1, 4])

    def test_static_requires_weights(self):
        graph = from_edge_list(np.array([[0, 1]]), num_vertices=2)
        with pytest.raises(ValueError, match="static edge weights"):
            StaticWalk().validate_graph(graph)


class TestMetaPath:
    def test_vertex_match_selects_by_label(self, tiny_graph):
        # Labels: v0=0, v1=1, v2=0, v3=1, v4=0.
        graph = tiny_graph
        graph.vertex_labels = np.array([0, 1, 0, 1, 0], dtype=np.int16)
        walk = MetaPathWalk([0, 1])  # step 0 requires label schema[1] = 1
        ctx = _context_for(graph, 0, step=0)
        # Neighbors 1 (label 1), 2 (label 0), 3 (label 1): weights w* or 0.
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [3.0, 0.0, 4.0])

    def test_cyclic_schema(self, tiny_graph):
        graph = tiny_graph
        graph.vertex_labels = np.array([0, 1, 0, 1, 0], dtype=np.int16)
        walk = MetaPathWalk([0, 1])
        # Step 1 requires schema[(1+1) % 2] = schema[0] = 0.
        ctx = _context_for(graph, 0, step=1)
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [0.0, 1.0, 0.0])

    def test_unweighted_variant(self, tiny_graph):
        graph = tiny_graph
        graph.vertex_labels = np.array([0, 1, 0, 1, 0], dtype=np.int16)
        walk = MetaPathWalk([0, 1], weighted=False)
        ctx = _context_for(graph, 0, step=0)
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [1.0, 0.0, 1.0])

    def test_edge_match(self, tiny_graph):
        graph = assign_edge_labels(tiny_graph, n_labels=2, seed=1)
        walk = MetaPathWalk([0], match="edge", weighted=False)
        ctx = _context_for(graph, 0, step=0)
        labels = graph.edge_labels[ctx.edge_positions]
        np.testing.assert_allclose(walk.dynamic_weights(ctx), (labels == 0).astype(float))

    def test_requires_labels(self, tiny_graph):
        with pytest.raises(QueryError, match="vertex labels"):
            MetaPathWalk([0, 1]).validate_graph(tiny_graph)
        with pytest.raises(QueryError, match="edge labels"):
            MetaPathWalk([0], match="edge").validate_graph(tiny_graph)

    def test_invalid_schema(self):
        with pytest.raises(QueryError):
            MetaPathWalk([])
        with pytest.raises(QueryError):
            MetaPathWalk([0, -1])
        with pytest.raises(QueryError):
            MetaPathWalk([0], match="both")


class TestNode2Vec:
    def test_first_step_is_static(self, tiny_graph):
        walk = Node2VecWalk(p=2.0, q=0.5)
        ctx = _context_for(tiny_graph, 0, prev=-1)
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [3.0, 1.0, 4.0])

    def test_second_order_weights(self, tiny_graph):
        """From vertex 0 having arrived from 3: checks all three cases.

        Neighbors of 0 are {1, 2, 3} with w* {3, 1, 4}:
        * 3 is the previous vertex        -> w*/p = 4/2 = 2
        * 2 satisfies (3, 2) in E         -> w*   = 1
        * 1: (3, 1) not in E              -> w*/q = 3/0.5 = 6
        """
        walk = Node2VecWalk(p=2.0, q=0.5)
        ctx = _context_for(tiny_graph, 0, prev=3, step=1)
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [6.0, 1.0, 2.0])

    def test_p_q_one_reduces_to_static(self, tiny_graph):
        walk = Node2VecWalk(p=1.0, q=1.0)
        ctx = _context_for(tiny_graph, 0, prev=3, step=1)
        np.testing.assert_allclose(walk.dynamic_weights(ctx), [3.0, 1.0, 4.0])

    def test_invalid_params(self):
        with pytest.raises(QueryError):
            Node2VecWalk(p=0)
        with pytest.raises(QueryError):
            Node2VecWalk(q=-1)

    def test_memory_profile_flags(self):
        walk = Node2VecWalk()
        assert walk.needs_previous
        assert walk.fetches_previous_neighbors
        assert walk.row_lookups_per_step == 2
        assert not UniformWalk().needs_previous


class TestEdgesExist:
    def test_vectorized_membership(self, tiny_graph):
        ctx = _context_for(tiny_graph, 0)
        sources = np.array([0, 0, 1, 3, 2, 4])
        targets = np.array([1, 0, 2, 2, 0, 1])
        expected = np.array(
            [tiny_graph.has_edge(u, v) for u, v in zip(sources, targets)]
        )
        np.testing.assert_array_equal(ctx.edges_exist(sources, targets), expected)

    def test_requires_edge_keys(self, tiny_graph):
        ctx = _context_for(tiny_graph, 0)
        ctx.edge_keys_sorted = None
        with pytest.raises(ValueError, match="edge keys"):
            ctx.edges_exist(np.array([0]), np.array([1]))
