"""Restart walks, exact PPR, and the walk-distribution validation tools."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.graph.generators import chung_lu_graph, cycle_graph, star_graph
from repro.graph.labels import assign_random_weights
from repro.walks.node2vec import Node2VecWalk
from repro.walks.ppr import (
    RestartWalk,
    exact_ppr,
    run_restart_walks,
    visit_frequencies,
)
from repro.walks.static import StaticWalk
from repro.walks.uniform import UniformWalk
from repro.walks.validation import (
    chi_square_step_test,
    empirical_step_distribution,
    exact_step_distribution,
    total_variation_distance,
)


class TestRestartWalk:
    def test_invalid_alpha(self):
        with pytest.raises(QueryError):
            RestartWalk(alpha=1.0)
        with pytest.raises(QueryError):
            RestartWalk(alpha=-0.1)

    def test_alpha_zero_never_teleports(self):
        graph = cycle_graph(8)
        starts = np.zeros(16, dtype=np.int64)
        session = run_restart_walks(graph, starts, 10, alpha=0.0, seed=1)
        # On a directed cycle with no restarts every path is deterministic.
        for q in range(16):
            np.testing.assert_array_equal(
                session.path(q), np.arange(11) % 8
            )

    def test_alpha_high_teleports_often(self):
        graph = cycle_graph(8)
        starts = np.zeros(64, dtype=np.int64)
        session = run_restart_walks(graph, starts, 20, alpha=0.8, seed=2)
        # Most visited vertices are the source.
        freq = visit_frequencies(session.paths, 8)
        assert freq[0] > 0.5

    def test_paths_valid_edges_or_teleports(self):
        graph = chung_lu_graph(128, avg_degree=6, seed=3, directed=False)
        starts = graph.nonzero_degree_vertices()[:32]
        session = run_restart_walks(graph, starts, 12, alpha=0.2, seed=3)
        for q in range(starts.size):
            path = session.path(q)
            for u, v in zip(path[:-1], path[1:]):
                assert graph.has_edge(int(u), int(v)) or v == starts[q]

    def test_trace_records_zero_degree_on_restart(self):
        graph = cycle_graph(4)
        session = run_restart_walks(graph, np.zeros(8, dtype=np.int64), 6, 0.9, seed=5)
        degrees = np.concatenate([r.degrees for r in session.records])
        assert (degrees == 0).any()  # restarts recorded as free steps

    def test_deterministic(self):
        graph = chung_lu_graph(64, avg_degree=5, seed=1, directed=False)
        starts = graph.nonzero_degree_vertices()[:10]
        a = run_restart_walks(graph, starts, 8, 0.3, seed=9)
        b = run_restart_walks(graph, starts, 8, 0.3, seed=9)
        np.testing.assert_array_equal(a.paths, b.paths)


class TestExactPPR:
    def test_probability_vector(self):
        graph = chung_lu_graph(64, avg_degree=5, seed=2, directed=False)
        source = int(graph.nonzero_degree_vertices()[0])
        ppr = exact_ppr(graph, source, alpha=0.2)
        assert ppr.sum() == pytest.approx(1.0, abs=1e-6)
        assert ppr[source] > 1.0 / graph.num_vertices  # source is favored

    def test_visit_frequencies_converge_to_ppr(self):
        graph = chung_lu_graph(96, avg_degree=6, seed=4, directed=False)
        source = int(graph.nonzero_degree_vertices()[0])
        starts = np.full(600, source, dtype=np.int64)
        session = run_restart_walks(graph, starts, 40, alpha=0.2, seed=6)
        estimate = visit_frequencies(session.paths, graph.num_vertices)
        exact = exact_ppr(graph, source, alpha=0.2)
        assert np.corrcoef(estimate, exact)[0, 1] > 0.95

    def test_invalid_source(self):
        graph = cycle_graph(4)
        with pytest.raises(QueryError):
            exact_ppr(graph, 99)


class TestExactStepDistribution:
    def test_matches_weights_on_star(self):
        graph = star_graph(3)
        graph = assign_random_weights(graph, seed=1)
        dist = exact_step_distribution(graph, StaticWalk(), 0)
        weights = graph.neighbor_weights(0).astype(np.float64)
        np.testing.assert_allclose(
            dist[graph.neighbors(0)], weights / weights.sum()
        )
        assert dist.sum() == pytest.approx(1.0)

    def test_sink_gives_zero_vector(self):
        graph = star_graph(3)  # leaves are sinks
        assert exact_step_distribution(graph, UniformWalk(), 1).sum() == 0.0

    def test_node2vec_conditioning(self, tiny_graph):
        dist_first = exact_step_distribution(tiny_graph, Node2VecWalk(2, 0.5), 0)
        dist_second = exact_step_distribution(
            tiny_graph, Node2VecWalk(2, 0.5), 0, prev=3, step=1
        )
        # Conditioning on prev changes the law (the second-order property).
        assert total_variation_distance(dist_first, dist_second) > 0.05

    def test_out_of_range(self, tiny_graph):
        with pytest.raises(QueryError):
            exact_step_distribution(tiny_graph, UniformWalk(), 999)


class TestChiSquareStepTest:
    @pytest.mark.parametrize("algorithm", [UniformWalk(), StaticWalk()],
                             ids=["uniform", "static"])
    def test_sampled_steps_match_exact_law(self, labeled_graph, algorithm):
        vertex = int(np.argmax(labeled_graph.degrees))
        samples = empirical_step_distribution(
            labeled_graph, algorithm, vertex, 4000, seed=8
        )
        __, p_value = chi_square_step_test(labeled_graph, algorithm, vertex, samples)
        assert p_value > 1e-4

    def test_wrong_distribution_detected(self, labeled_graph):
        """Feeding uniform samples against the weighted law must fail."""
        vertex = int(np.argmax(labeled_graph.degrees))
        rng = np.random.default_rng(0)
        neighbors = labeled_graph.neighbors(vertex)
        fake = rng.choice(neighbors, size=4000)  # uniform, not weighted
        __, p_value = chi_square_step_test(labeled_graph, StaticWalk(), vertex, fake)
        assert p_value < 1e-4

    def test_samples_outside_support_rejected(self, tiny_graph):
        with pytest.raises(QueryError):
            chi_square_step_test(
                tiny_graph, UniformWalk(), 0, np.array([4, 4, 4])
            )


class TestTotalVariation:
    def test_zero_for_identical(self):
        p = np.array([0.5, 0.5])
        assert total_variation_distance(p, p) == 0.0

    def test_one_for_disjoint(self):
        assert total_variation_distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.ones(2), np.ones(3))


class TestSecondOrderEmpirical:
    def test_two_step_conditional_matches_exact(self, labeled_graph):
        """The sampled second step, conditioned on the first, follows the
        Node2Vec conditional law exactly (chi-square)."""
        from collections import Counter

        from repro.walks.stepper import PWRSSampler, run_walks

        walk = Node2VecWalk(2.0, 0.5)
        # A low-degree start concentrates the first step on few branches.
        degrees = labeled_graph.degrees
        start = int(np.nonzero((degrees >= 3) & (degrees <= 5))[0][0])
        starts = np.full(6000, start, dtype=np.int64)
        session = run_walks(labeled_graph, starts, 2, walk, PWRSSampler(16, 31))
        # Group by the first step and test the most common branch.
        firsts = session.paths[:, 1]
        branch, count = Counter(firsts[firsts >= 0].tolist()).most_common(1)[0]
        assert count > 300
        mask = (session.paths[:, 1] == branch) & (session.paths[:, 2] >= 0)
        seconds = session.paths[mask, 2]
        __, p_value = chi_square_step_test(
            labeled_graph, walk, int(branch), seconds, prev=start, step=1
        )
        assert p_value > 1e-4
